// Round-phase timing benchmark: where a federated round's time goes, and
// what the observability layer costs.
//
// Runs FedProx on Synthetic(1,1) for 20 rounds in five modes —
// observer-free baseline, full observers (JSONL trace sink + collector),
// observers + span profiler, the Prometheus telemetry stack (metrics
// feeder + file exporter, obs/exposition.h), and the serialized
// transport (every broadcast/update round-trips the binary wire format)
// — and writes BENCH_trainer_round.json with per-phase means, the
// observer/profiler/telemetry/serialization overheads, the exact
// transport-measured bytes moved per round, and the final registry dump
// with full histogram buckets. The telemetry rep's history is checked
// bit-identical against the baseline ("history_bit_identical"). The
// JSONL trace lands next to the CSVs (override with --trace-out); pass
// --profile-out to also keep one rep's Chrome trace.
//
//   ./bench_round_phases [--rounds 20] [--reps 3] [--stragglers 0.5]

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "comm/transport.h"
#include "obs/chrome_trace.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "obs/trace_sink.h"
#include "support/json.h"
#include "support/stopwatch.h"

namespace {

using namespace fed;
using namespace fed::bench;

double run_once(const Workload& workload, const TrainerConfig& config,
                TrainingObserver* observer, ThreadPool* pool = nullptr,
                TrainHistory* history = nullptr) {
  Trainer trainer(*workload.model, workload.data, config, pool);
  if (observer) trainer.add_observer(*observer);
  Stopwatch timer;
  TrainHistory h = trainer.run();
  const double seconds = timer.seconds();
  if (history) *history = std::move(h);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::size_t reps = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("reps", 3)));
  const double stragglers = flags.get_double("stragglers", 0.5);
  const std::string json_path =
      flags.get_string("bench-json", "BENCH_trainer_round.json");
  BenchOptions options = parse_options(flags);
  const std::size_t rounds = options.rounds_override ? options.rounds_override
                                                     : 20;
  const std::string trace_path =
      options.trace_out.empty() ? options.out_dir + "/trainer_round_trace.jsonl"
                                : options.trace_out;

  print_banner("bench_round_phases",
               "per-phase round timing + observability overhead");

  const Workload workload = load_workload("synthetic_1_1", options);
  TrainerConfig config = base_config(workload, Algorithm::kFedProx,
                                     workload.best_mu, stragglers,
                                     options.epochs, options.seed);
  config.rounds = rounds;
  config.eval_every = 1;
  config.devices_per_round =
      std::min(config.devices_per_round, workload.data.num_clients());
  // Transport is this benchmark's independent variable (baseline vs
  // serialized reps below), so install only the remaining shared flags.
  config.shards = options.shards ? options.shards : 1;
  apply_faults(config, options);

  // Warm-up (thread pool, page cache), then alternate baseline/observed
  // reps and keep the minimum of each — the standard way to strip
  // scheduler noise from a wall-clock comparison.
  run_once(workload, config, nullptr);

  const std::string metrics_path =
      options.metrics_out.empty()
          ? options.out_dir + "/trainer_round_metrics.prom"
          : options.metrics_out;

  double baseline = 0.0;
  double observed = 0.0;
  double profiled = 0.0;
  double telemetry = 0.0;
  double serialized = 0.0;
  std::size_t profiled_events = 0;
  bool history_identical = true;
  JsonValue metrics_dump;
  TrainerConfig serialized_config = config;
  serialized_config.transport = make_transport(TransportKind::kSerialized);
  TraceCollector collector;
  TraceCollector serialized_collector;
  MetricsRegistry pool_registry;
  Profiler& profiler = Profiler::instance();
  profiler.set_thread_name("main");
  for (std::size_t rep = 0; rep < reps; ++rep) {
    TrainHistory baseline_history;
    const double b = run_once(workload, config, nullptr, nullptr,
                              &baseline_history);
    baseline = rep ? std::min(baseline, b) : b;

    collector.clear();
    JsonlTraceSink sink(trace_path);
    TraceObserver tracer(sink);
    CompositeObserver stack;
    stack.add(tracer);
    stack.add(collector);
    const double o = run_once(workload, config, &stack);
    observed = rep ? std::min(observed, o) : o;

    // Same observer stack with the span profiler hot, on a pool we own
    // so worker utilization can be read back. Events from all but the
    // last rep are discarded so a kept --profile-out trace only shows
    // one run.
    ThreadPool profiled_pool(config.threads);
    profiler.discard();
    profiler.enable();
    const double p = run_once(workload, config, &stack, &profiled_pool);
    profiler.disable();
    if (rep + 1 == reps) record_pool_stats(profiled_pool, pool_registry);
    profiled = rep ? std::min(profiled, p) : p;
    if (rep + 1 == reps) {
      if (options.profile_out.empty()) {
        profiled_events = profiler.drain().events.size();
      } else {
        const auto snapshot = profiler.drain();
        profiled_events = snapshot.events.size();
        save_json_file(options.profile_out, chrome_trace_json(snapshot));
        std::cout << "kept last profiled rep's Chrome trace at "
                  << options.profile_out << "\n";
      }
    }

    // Telemetry rep: metrics feeder + Prometheus file exporter, the
    // --metrics-out stack. Trace contexts ride the wire either way, so
    // this rep's history must be bit-identical to the baseline's.
    {
      MetricsRegistry registry;
      MetricsObserver metrics(registry);
      MetricsExporter exporter(registry, metrics_path,
                               options.metrics_every);
      CompositeObserver telemetry_stack;
      telemetry_stack.add(metrics);
      telemetry_stack.add(exporter);
      TrainHistory telemetry_history;
      const double m = run_once(workload, config, &telemetry_stack, nullptr,
                                &telemetry_history);
      telemetry = rep ? std::min(telemetry, m) : m;
      history_identical =
          history_identical &&
          telemetry_history.final_parameters ==
              baseline_history.final_parameters;
      if (rep + 1 == reps) {
        metrics_dump = registry.to_json(/*include_buckets=*/true);
      }
    }

    // Serialized-transport rep: same run, every payload through the wire
    // codecs. Its collector records the exact measured bytes per round.
    serialized_collector.clear();
    const double s = run_once(workload, serialized_config,
                              &serialized_collector);
    serialized = rep ? std::min(serialized, s) : s;
  }

  const auto& traces = collector.traces();
  const TraceSummary summary = summarize(traces);
  const double overhead_pct =
      baseline > 0.0 ? 100.0 * (observed - baseline) / baseline : 0.0;
  const double profiler_overhead_pct =
      baseline > 0.0 ? 100.0 * (profiled - baseline) / baseline : 0.0;
  const double n = summary.rounds ? static_cast<double>(summary.rounds) : 1.0;

  double solve_client_total = 0.0;
  std::size_t solve_count = 0;
  for (const auto& t : traces) {
    solve_client_total += t.solve.total_seconds;
    solve_count += t.solve.count;
  }

  JsonObject phases;
  phases["sampling_mean_s"] = summary.sampling_seconds / n;
  phases["solve_wall_mean_s"] = summary.solve_wall_seconds / n;
  phases["aggregate_mean_s"] = summary.aggregate_seconds / n;
  phases["eval_mean_s"] = summary.eval_seconds / n;
  phases["client_solve_mean_s"] =
      solve_count ? solve_client_total / static_cast<double>(solve_count) : 0.0;

  JsonObject out;
  out["benchmark"] = "trainer_round_phases";
  out["workload"] = workload.name;
  out["algorithm"] = "FedProx";
  out["rounds"] = rounds;
  out["devices_per_round"] = config.devices_per_round;
  out["straggler_fraction"] = stragglers;
  out["reps"] = reps;
  out["baseline_seconds"] = baseline;
  out["observed_seconds"] = observed;
  out["overhead_pct"] = overhead_pct;
  out["profiled_seconds"] = profiled;
  out["profiler_overhead_pct"] = profiler_overhead_pct;
  out["profiled_events"] = profiled_events;
  out["profile_kernels_compiled"] = kProfileKernels;
  out["pool_busy_seconds"] =
      pool_registry.gauge("fed_pool_busy_seconds").value();
  out["pool_queue_wait_seconds"] =
      pool_registry.gauge("fed_pool_queue_wait_seconds").value();
  out["phases"] = std::move(phases);
  out["bytes_down_total"] = summary.bytes_down;
  out["bytes_up_total"] = summary.bytes_up;

  // Serialized-transport rep: wall-clock cost of round-tripping every
  // payload through the wire codecs, plus the exact bytes it measured
  // per round (identical to the in-process transport's analytical
  // accounting — asserted in tests/comm_transport_test.cpp).
  // Telemetry rep: cost of the metrics feeder + Prometheus exporter, and
  // proof it did not perturb training. The registry dump keeps the full
  // bucket arrays so round/solve latency histograms survive the run.
  const double telemetry_overhead_pct =
      baseline > 0.0 ? 100.0 * (telemetry - baseline) / baseline : 0.0;
  out["telemetry_seconds"] = telemetry;
  out["telemetry_overhead_pct"] = telemetry_overhead_pct;
  out["history_bit_identical"] = history_identical;
  out["metrics_path"] = metrics_path;
  out["metrics"] = std::move(metrics_dump);

  const double serialized_overhead_pct =
      baseline > 0.0 ? 100.0 * (serialized - baseline) / baseline : 0.0;
  out["serialized_seconds"] = serialized;
  out["serialized_overhead_pct"] = serialized_overhead_pct;
  JsonArray bytes_down_rounds;
  JsonArray bytes_up_rounds;
  for (const auto& t : serialized_collector.traces()) {
    if (t.round == 0) continue;  // round 0 is evaluation-only
    bytes_down_rounds.push_back(t.bytes_down);
    bytes_up_rounds.push_back(t.bytes_up);
  }
  out["serialized_bytes_down_per_round"] = std::move(bytes_down_rounds);
  out["serialized_bytes_up_per_round"] = std::move(bytes_up_rounds);
  out["trace_path"] = trace_path;
  save_json_file(json_path, JsonValue(std::move(out)));

  StdoutSummarySink stdout_sink;
  RunInfo info;
  info.algorithm = "FedProx";
  info.rounds = rounds;
  stdout_sink.begin_run(info);
  for (const auto& t : traces) {
    RoundMetrics unused;
    stdout_sink.write(unused, t);
  }
  stdout_sink.end_run(TrainHistory{});

  std::cout << "\nbaseline " << baseline << "s, observers " << observed
            << "s (overhead " << TablePrinter::fmt(overhead_pct, 2)
            << "%), observers+profiler " << profiled << "s (overhead "
            << TablePrinter::fmt(profiler_overhead_pct, 2) << "%, "
            << profiled_events << " events, kernel spans "
            << (kProfileKernels ? "compiled" : "off")
            << "), telemetry " << telemetry << "s (overhead "
            << TablePrinter::fmt(telemetry_overhead_pct, 2) << "%, history "
            << (history_identical ? "bit-identical" : "DIVERGED")
            << "), serialized transport " << serialized << "s (overhead "
            << TablePrinter::fmt(serialized_overhead_pct, 2) << "%)\nwrote "
            << json_path << ", " << trace_path << ", and " << metrics_path
            << "\n";
  return 0;
}
