// Round-phase timing benchmark: where a federated round's time goes, and
// what the observability layer costs.
//
// Runs FedProx on Synthetic(1,1) for 20 rounds twice — observer-free
// baseline vs. full instrumentation (JSONL trace sink + collector) — and
// writes BENCH_trainer_round.json with per-phase means and the
// instrumentation overhead. The JSONL trace itself lands next to the
// CSVs (override with --trace-out).
//
//   ./bench_round_phases [--rounds 20] [--reps 3] [--stragglers 0.5]

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "obs/observer.h"
#include "obs/trace_sink.h"
#include "support/json.h"
#include "support/stopwatch.h"

namespace {

using namespace fed;
using namespace fed::bench;

double run_once(const Workload& workload, const TrainerConfig& config,
                TrainingObserver* observer) {
  Trainer trainer(*workload.model, workload.data, config);
  if (observer) trainer.add_observer(*observer);
  Stopwatch timer;
  trainer.run();
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::size_t reps = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("reps", 3)));
  const double stragglers = flags.get_double("stragglers", 0.5);
  const std::string json_path =
      flags.get_string("bench-json", "BENCH_trainer_round.json");
  BenchOptions options = parse_options(flags);
  const std::size_t rounds = options.rounds_override ? options.rounds_override
                                                     : 20;
  const std::string trace_path =
      options.trace_out.empty() ? options.out_dir + "/trainer_round_trace.jsonl"
                                : options.trace_out;

  print_banner("bench_round_phases",
               "per-phase round timing + observability overhead");

  const Workload workload = load_workload("synthetic_1_1", options);
  TrainerConfig config = base_config(workload, Algorithm::kFedProx,
                                     workload.best_mu, stragglers,
                                     options.epochs, options.seed);
  config.rounds = rounds;
  config.eval_every = 1;
  config.devices_per_round =
      std::min(config.devices_per_round, workload.data.num_clients());

  // Warm-up (thread pool, page cache), then alternate baseline/observed
  // reps and keep the minimum of each — the standard way to strip
  // scheduler noise from a wall-clock comparison.
  run_once(workload, config, nullptr);

  double baseline = 0.0;
  double observed = 0.0;
  TraceCollector collector;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const double b = run_once(workload, config, nullptr);
    baseline = rep ? std::min(baseline, b) : b;

    collector.clear();
    JsonlTraceSink sink(trace_path);
    TraceObserver tracer(sink);
    CompositeObserver stack;
    stack.add(tracer);
    stack.add(collector);
    const double o = run_once(workload, config, &stack);
    observed = rep ? std::min(observed, o) : o;
  }

  const auto& traces = collector.traces();
  const TraceSummary summary = summarize(traces);
  const double overhead_pct =
      baseline > 0.0 ? 100.0 * (observed - baseline) / baseline : 0.0;
  const double n = summary.rounds ? static_cast<double>(summary.rounds) : 1.0;

  double solve_client_total = 0.0;
  std::size_t solve_count = 0;
  for (const auto& t : traces) {
    solve_client_total += t.solve.total_seconds;
    solve_count += t.solve.count;
  }

  JsonObject phases;
  phases["sampling_mean_s"] = summary.sampling_seconds / n;
  phases["solve_wall_mean_s"] = summary.solve_wall_seconds / n;
  phases["aggregate_mean_s"] = summary.aggregate_seconds / n;
  phases["eval_mean_s"] = summary.eval_seconds / n;
  phases["client_solve_mean_s"] =
      solve_count ? solve_client_total / static_cast<double>(solve_count) : 0.0;

  JsonObject out;
  out["benchmark"] = "trainer_round_phases";
  out["workload"] = workload.name;
  out["algorithm"] = "FedProx";
  out["rounds"] = rounds;
  out["devices_per_round"] = config.devices_per_round;
  out["straggler_fraction"] = stragglers;
  out["reps"] = reps;
  out["baseline_seconds"] = baseline;
  out["observed_seconds"] = observed;
  out["overhead_pct"] = overhead_pct;
  out["phases"] = std::move(phases);
  out["bytes_down_total"] = summary.bytes_down;
  out["bytes_up_total"] = summary.bytes_up;
  out["trace_path"] = trace_path;
  save_json_file(json_path, JsonValue(std::move(out)));

  StdoutSummarySink stdout_sink;
  RunInfo info;
  info.algorithm = "FedProx";
  info.rounds = rounds;
  stdout_sink.begin_run(info);
  for (const auto& t : traces) {
    RoundMetrics unused;
    stdout_sink.write(unused, t);
  }
  stdout_sink.end_run(TrainHistory{});

  std::cout << "\nbaseline " << baseline << "s, instrumented " << observed
            << "s (overhead " << TablePrinter::fmt(overhead_pct, 2)
            << "%)\nwrote " << json_path << " and " << trace_path << "\n";
  return 0;
}
