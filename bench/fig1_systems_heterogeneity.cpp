// Figure 1: training loss vs. communication rounds on five federated
// datasets under 0% / 50% / 90% stragglers, comparing
//   FedAvg              (drop stragglers, mu = 0)
//   FedProx (mu = 0)    (keep partial work)
//   FedProx (mu > 0)    (keep partial work + proximal term; best mu)
// with E = 20 local epochs. Expected shape (paper): more stragglers hurt
// FedAvg badly; FedProx mu=0 improves on FedAvg; FedProx mu>0 is the most
// stable and typically best.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 1",
               "systems heterogeneity: loss under 0%/50%/90% stragglers");

  CsvWriter csv(options.out_dir + "/fig1_systems_heterogeneity.csv",
                history_csv_header());
  TraceCapture trace(options);  // honours --trace-out
  RunVariantsOptions rv;
  rv.observer = trace.observer();

  for (const auto& name : figure1_workload_names()) {
    const Workload w = load_workload(name, options);
    for (double stragglers : {0.0, 0.5, 0.9}) {
      std::vector<VariantSpec> specs;
      {
        TrainerConfig c = base_config(w, Algorithm::kFedAvg, 0.0, stragglers,
                                      options.epochs, options.seed);
        apply_rounds(c, w, options);
        specs.push_back({"FedAvg", c});
      }
      {
        TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, stragglers,
                                      options.epochs, options.seed);
        apply_rounds(c, w, options);
        specs.push_back({"FedProx (mu=0)", c});
      }
      {
        TrainerConfig c =
            base_config(w, Algorithm::kFedProx, w.best_mu, stragglers,
                        options.epochs, options.seed);
        apply_rounds(c, w, options);
        specs.push_back({"FedProx (mu=" + std::to_string(w.best_mu) + ")", c});
      }
      auto results = run_variants(w, specs, rv);
      std::cout << "\n--- " << w.name << ", "
                << static_cast<int>(stragglers * 100)
                << "% stragglers: training loss ---\n"
                << render_series(results, Metric::kTrainLoss);
      append_history_csv(
          csv, w.name + "@" + std::to_string(static_cast<int>(stragglers * 100)) +
                   "%stragglers",
          results);
    }
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
