#include "bench_common.h"

#include <algorithm>
#include <iostream>
#include <map>

#include "comm/transport.h"
#include "obs/chrome_trace.h"
#include "obs/profiler.h"
#include "support/log.h"

namespace fed::bench {

BenchOptions parse_options(int argc, char** argv) {
  CliFlags flags(argc, argv);
  return parse_options(flags);
}

BenchOptions parse_options(const CliFlags& flags) {
  BenchOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  options.scale = flags.get_double("scale", 1.0);
  options.epochs = static_cast<std::size_t>(flags.get_int("epochs", 20));
  options.rounds_override =
      static_cast<std::size_t>(flags.get_int("rounds", 0));
  options.out_dir = flags.get_string("out-dir", "bench_out");
  options.trace_out = flags.get_optional_string("trace-out").value_or("");
  options.trace_rotate_mb =
      static_cast<std::size_t>(flags.get_int("trace-rotate-mb", 0));
  options.profile_out = flags.get_optional_string("profile-out").value_or("");
  options.metrics_out = flags.get_optional_string("metrics-out").value_or("");
  options.metrics_every = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("metrics-every", 1)));
  options.transport = flags.get_string("transport", "inprocess");
  parse_transport_kind(options.transport);  // fail fast on a bad value
  if (auto faults = flags.get_optional_string("faults")) {
    options.faults = parse_fault_profile(*faults);  // fail fast, too
  }
  options.recovery.max_retries =
      static_cast<std::size_t>(flags.get_int("retries", 2));
  options.recovery.deadline_ms = flags.get_double("deadline-ms", 0.0);
  options.recovery.quorum = flags.get_double("quorum", 1.0);
  options.shards = static_cast<std::size_t>(flags.get_int("shards", 1));
  if (auto churn = flags.get_optional_string("churn")) {
    options.churn = parse_churn_config(*churn);  // fail fast, too
  }
  options.checkpoint_every =
      static_cast<std::size_t>(flags.get_int("checkpoint-every", 0));
  options.checkpoint_dir = flags.get_string("checkpoint-dir", "");
  options.checkpoint_retain =
      static_cast<std::size_t>(flags.get_int("checkpoint-retain", 3));
  options.resume = flags.get_bool("resume", false);
  options.quick = flags.get_bool("quick", false);
  for (const auto& name : flags.unused()) {
    log_warn() << "ignoring unknown flag --" << name;
  }
  if (options.quick) {
    options.scale = std::min(options.scale, 0.1);
  }
  return options;
}

Workload load_workload(const std::string& name, const BenchOptions& options) {
  return make_workload(name, options.seed, options.scale);
}

void apply_rounds(TrainerConfig& config, const Workload& workload,
                  const BenchOptions& options) {
  config.rounds = options.rounds_override ? options.rounds_override
                                          : workload.default_rounds;
  if (options.quick) {
    config.rounds = std::max<std::size_t>(2, config.rounds / 20);
  }
  config.devices_per_round =
      std::min(config.devices_per_round, workload.data.num_clients());
  apply_common_flags(config, options);
}

void apply_common_flags(TrainerConfig& config, const BenchOptions& options) {
  config.transport = make_transport(parse_transport_kind(options.transport));
  config.shards = options.shards ? options.shards : 1;
  if (config.shards > 1) {
    log_info() << "sharded aggregation: " << config.shards
               << " aggregator shards per round";
  }
  config.churn = options.churn;
  if (config.churn.any()) {
    log_info() << "open-world churn: " << to_string(config.churn);
  }
  if (options.checkpoint_every > 0) {
    config.checkpoint.dir = options.checkpoint_dir.empty()
                                ? options.out_dir + "/checkpoints"
                                : options.checkpoint_dir;
    config.checkpoint.every = options.checkpoint_every;
    config.checkpoint.retain = options.checkpoint_retain;
    log_info() << "checkpointing to " << config.checkpoint.dir << " every "
               << config.checkpoint.every << " round(s), keeping "
               << config.checkpoint.retain << " generation(s)";
  }
  apply_faults(config, options);
}

void apply_faults(TrainerConfig& config, const BenchOptions& options) {
  config.faults = options.faults;
  config.recovery = options.recovery;
  if (options.faults.any()) {
    log_info() << "channel faults: " << to_string(options.faults)
               << " (retries " << options.recovery.max_retries << ", deadline "
               << options.recovery.deadline_ms << " ms, quorum "
               << options.recovery.quorum << ")";
  }
}

TraceCapture::TraceCapture(const BenchOptions& options) {
  if (!options.trace_out.empty()) {
    RotationPolicy rotation;
    rotation.max_bytes = options.trace_rotate_mb * 1024 * 1024;
    // A resumed run appends a new segment after the crashed run's lines
    // instead of truncating them away (trace_lint understands the
    // multi-segment layout).
    const auto mode = options.resume ? JsonlTraceSink::OpenMode::kAppend
                                     : JsonlTraceSink::OpenMode::kTruncate;
    sink_ = std::make_unique<JsonlTraceSink>(options.trace_out, rotation, mode);
    tracer_ = std::make_unique<TraceObserver>(*sink_);
    log_info() << "streaming round traces to " << options.trace_out
               << (options.resume ? " (append)" : "")
               << (rotation.max_bytes
                       ? " (rotating past " +
                             std::to_string(options.trace_rotate_mb) + " MiB)"
                       : "");
  }
  if (!options.metrics_out.empty()) {
    registry_ = std::make_unique<MetricsRegistry>();
    if (options.resume) {
      // Counters are cumulative: carry the crashed run's totals forward
      // so the scrape series never regresses across the crash.
      const std::size_t seeded =
          seed_counters_from_exposition(*registry_, options.metrics_out);
      if (seeded > 0) {
        log_info() << "carried " << seeded << " counter sample(s) over from "
                   << options.metrics_out;
      }
    }
    metrics_ = std::make_unique<MetricsObserver>(*registry_);
    exporter_ = std::make_unique<MetricsExporter>(
        *registry_, options.metrics_out, options.metrics_every);
    log_info() << "publishing Prometheus metrics to " << options.metrics_out
               << " every " << options.metrics_every << " round(s)";
  }
  if (metrics_) {
    // The feeder must run before the publisher so each scrape file
    // reflects the round it just finished.
    composite_ = std::make_unique<CompositeObserver>();
    if (tracer_) composite_->add(*tracer_);
    composite_->add(*metrics_);
    composite_->add(*exporter_);
  }
  if (!options.profile_out.empty()) {
    profile_out_ = options.profile_out;
    Profiler::instance().set_thread_name("main");
    Profiler::instance().enable();
    log_info() << "span profiler on; Chrome trace will land at "
               << profile_out_;
  }
}

TrainingObserver* TraceCapture::observer() const {
  return composite_ ? static_cast<TrainingObserver*>(composite_.get())
                    : tracer_.get();
}

TraceCapture::~TraceCapture() {
  if (profile_out_.empty()) return;
  Profiler::instance().disable();
  write_chrome_trace(profile_out_);
  log_info() << "wrote span profile to " << profile_out_
             << " (open in chrome://tracing or ui.perfetto.dev)";
}

const char* metric_name(Metric metric) {
  switch (metric) {
    case Metric::kTrainLoss: return "training loss";
    case Metric::kTestAccuracy: return "testing accuracy";
    case Metric::kGradVariance: return "variance of local gradients";
    case Metric::kMu: return "mu";
  }
  return "?";
}

std::string render_series(const std::vector<VariantResult>& results,
                          Metric metric) {
  // Collect the union of evaluated rounds (they normally coincide).
  std::map<std::size_t, std::vector<std::string>> rows;
  std::vector<std::string> header{"round"};
  for (std::size_t v = 0; v < results.size(); ++v) {
    header.push_back(results[v].label);
    for (const auto& m : results[v].history.rounds) {
      if (!m.evaluated()) continue;
      auto& row = rows[m.round];
      row.resize(results.size(), "-");
      double value = 0.0;
      switch (metric) {
        case Metric::kTrainLoss: value = *m.train_loss; break;
        case Metric::kTestAccuracy: value = *m.test_accuracy; break;
        case Metric::kGradVariance:
          if (!m.grad_variance) continue;
          value = *m.grad_variance;
          break;
        case Metric::kMu: value = m.mu; break;
      }
      row[v] = TablePrinter::fmt(value, 4);
    }
  }
  TablePrinter table(header);
  for (const auto& [round, cells] : rows) {
    std::vector<std::string> row{std::to_string(round)};
    row.insert(row.end(), cells.begin(), cells.end());
    table.add_row(std::move(row));
  }
  return table.render();
}

void print_banner(const std::string& figure, const std::string& description) {
  std::cout << "==============================================================="
               "=\n"
            << figure << " — " << description << "\n"
            << "(FedProx reproduction; synthetic stand-ins for real datasets, "
               "see DESIGN.md)\n"
            << "==============================================================="
               "=\n";
}

}  // namespace fed::bench
