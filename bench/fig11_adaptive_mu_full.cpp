// Figure 11 (Appendix C.3.3): the adaptive-mu heuristic on all four
// synthetic datasets, with adversarial initial mu (1 for IID, 0 for the
// non-IID sets). Expected shape: dynamic mu is competitive with the best
// hand-tuned mu everywhere.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 11", "adaptive mu on all synthetic datasets");

  CsvWriter csv(options.out_dir + "/fig11_adaptive_mu_full.csv",
                history_csv_header());

  for (const auto& name : synthetic_workload_names()) {
    const Workload w = load_workload(name, options);
    const double initial_mu = (name == "synthetic_iid") ? 1.0 : 0.0;
    std::vector<VariantSpec> specs;
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      specs.push_back({"FedAvg (FedProx, mu=0)", c});
    }
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      c.adaptive_mu.enabled = true;
      c.adaptive_mu.initial_mu = initial_mu;
      specs.push_back(
          {"FedProx, dynamic mu (mu0=" + std::to_string(initial_mu) + ")", c});
    }
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 1.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      specs.push_back({"FedProx, mu>0 (mu=1)", c});
    }
    auto results = run_variants(w, specs);
    std::cout << "\n--- " << w.name << ": training loss ---\n"
              << render_series(results, Metric::kTrainLoss);
    append_history_csv(csv, w.name, results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
