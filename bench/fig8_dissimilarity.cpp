// Figure 8 (Appendix C.3.2): the gradient-variance dissimilarity metric
// tracked on all five Figure-1 datasets with no systems heterogeneity
// (no dropped devices). Expected shape: mu > 0 keeps the dissimilarity
// lower than mu = 0, consistent with the loss curves.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 8", "dissimilarity measurement on five datasets");

  CsvWriter csv(options.out_dir + "/fig8_dissimilarity.csv",
                history_csv_header());

  for (const auto& name : figure1_workload_names()) {
    const Workload w = load_workload(name, options);
    std::vector<VariantSpec> specs;
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      c.measure_dissimilarity = true;
      specs.push_back({"FedAvg (FedProx, mu=0)", c});
    }
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, w.best_mu, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      c.measure_dissimilarity = true;
      specs.push_back({"FedProx (mu>0)", c});
    }
    auto results = run_variants(w, specs);
    std::cout << "\n--- " << w.name << ": variance of local gradients ---\n"
              << render_series(results, Metric::kGradVariance);
    append_history_csv(csv, w.name, results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
