// Figure 5 (Appendix C.3.1): on perfectly IID data, FedAvg is robust to
// dropping stragglers — keeping partial work (FedProx mu=0) brings little
// improvement. Straggler rates 0% / 10% / 50% / 90%; loss and accuracy.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 5", "IID data: FedAvg robustness to stragglers");

  CsvWriter csv(options.out_dir + "/fig5_iid_stragglers.csv",
                history_csv_header());
  const Workload w = load_workload("synthetic_iid", options);

  for (double stragglers : {0.0, 0.1, 0.5, 0.9}) {
    std::vector<VariantSpec> specs;
    {
      TrainerConfig c = base_config(w, Algorithm::kFedAvg, 0.0, stragglers,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      specs.push_back({"FedAvg", c});
    }
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, stragglers,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      specs.push_back({"FedProx (mu=0)", c});
    }
    auto results = run_variants(w, specs);
    const std::string tag =
        std::to_string(static_cast<int>(stragglers * 100)) + "% stragglers";
    std::cout << "\n--- Synthetic IID (" << tag << "): training loss ---\n"
              << render_series(results, Metric::kTrainLoss)
              << "\n--- Synthetic IID (" << tag << "): testing accuracy ---\n"
              << render_series(results, Metric::kTestAccuracy);
    append_history_csv(csv, w.name + "@" + tag, results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
