# Empty dependencies file for fedprox_tests.
# This may be replaced when dependencies are built.
