
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adam_clip_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/adam_clip_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/adam_clip_test.cpp.o.d"
  "/root/repo/tests/adaptive_mu_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/adaptive_mu_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/adaptive_mu_test.cpp.o.d"
  "/root/repo/tests/aggregate_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/aggregate_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/aggregate_test.cpp.o.d"
  "/root/repo/tests/bench_common_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/bench_common_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/bench_common_test.cpp.o.d"
  "/root/repo/tests/client_server_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/client_server_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/client_server_test.cpp.o.d"
  "/root/repo/tests/convergence_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/convergence_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/convergence_test.cpp.o.d"
  "/root/repo/tests/dataset_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/dataset_test.cpp.o.d"
  "/root/repo/tests/dissimilarity_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/dissimilarity_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/dissimilarity_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/feddane_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/feddane_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/feddane_test.cpp.o.d"
  "/root/repo/tests/image_like_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/image_like_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/image_like_test.cpp.o.d"
  "/root/repo/tests/inexactness_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/inexactness_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/inexactness_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/json_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/json_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/leaf_json_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/leaf_json_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/leaf_json_test.cpp.o.d"
  "/root/repo/tests/nn_logistic_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/nn_logistic_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/nn_logistic_test.cpp.o.d"
  "/root/repo/tests/nn_loss_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/nn_loss_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/nn_loss_test.cpp.o.d"
  "/root/repo/tests/nn_lstm_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/nn_lstm_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/nn_lstm_test.cpp.o.d"
  "/root/repo/tests/nn_mlp_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/nn_mlp_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/nn_mlp_test.cpp.o.d"
  "/root/repo/tests/obs_metrics_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/obs_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/obs_metrics_test.cpp.o.d"
  "/root/repo/tests/obs_observer_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/obs_observer_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/obs_observer_test.cpp.o.d"
  "/root/repo/tests/obs_trace_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/obs_trace_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/obs_trace_test.cpp.o.d"
  "/root/repo/tests/optim_solver_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/optim_solver_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/optim_solver_test.cpp.o.d"
  "/root/repo/tests/parallel_determinism_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/parallel_determinism_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/parallel_determinism_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/registry_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/registry_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/registry_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/sampling_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/sampling_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/sampling_test.cpp.o.d"
  "/root/repo/tests/sequence_data_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/sequence_data_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/sequence_data_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/sparkline_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/sparkline_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/sparkline_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/synthetic_data_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/synthetic_data_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/synthetic_data_test.cpp.o.d"
  "/root/repo/tests/systems_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/systems_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/systems_test.cpp.o.d"
  "/root/repo/tests/tensor_ops_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/tensor_ops_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/tensor_ops_test.cpp.o.d"
  "/root/repo/tests/theory_mu_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/theory_mu_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/theory_mu_test.cpp.o.d"
  "/root/repo/tests/trainer_test.cpp" "tests/CMakeFiles/fedprox_tests.dir/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/fedprox_tests.dir/trainer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedprox.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
