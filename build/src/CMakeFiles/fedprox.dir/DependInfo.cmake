
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_mu.cpp" "src/CMakeFiles/fedprox.dir/core/adaptive_mu.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/core/adaptive_mu.cpp.o.d"
  "/root/repo/src/core/convergence.cpp" "src/CMakeFiles/fedprox.dir/core/convergence.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/core/convergence.cpp.o.d"
  "/root/repo/src/core/dissimilarity.cpp" "src/CMakeFiles/fedprox.dir/core/dissimilarity.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/core/dissimilarity.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/fedprox.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/feddane.cpp" "src/CMakeFiles/fedprox.dir/core/feddane.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/core/feddane.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/fedprox.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/fedprox.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/core/trainer.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/fedprox.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/image_like.cpp" "src/CMakeFiles/fedprox.dir/data/image_like.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/data/image_like.cpp.o.d"
  "/root/repo/src/data/leaf_json.cpp" "src/CMakeFiles/fedprox.dir/data/leaf_json.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/data/leaf_json.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/CMakeFiles/fedprox.dir/data/partition.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/data/partition.cpp.o.d"
  "/root/repo/src/data/sequence.cpp" "src/CMakeFiles/fedprox.dir/data/sequence.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/data/sequence.cpp.o.d"
  "/root/repo/src/data/stats.cpp" "src/CMakeFiles/fedprox.dir/data/stats.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/data/stats.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/fedprox.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/CMakeFiles/fedprox.dir/nn/embedding.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/nn/embedding.cpp.o.d"
  "/root/repo/src/nn/grad_check.cpp" "src/CMakeFiles/fedprox.dir/nn/grad_check.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/nn/grad_check.cpp.o.d"
  "/root/repo/src/nn/logistic.cpp" "src/CMakeFiles/fedprox.dir/nn/logistic.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/nn/logistic.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/fedprox.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/CMakeFiles/fedprox.dir/nn/lstm.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/nn/lstm.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/fedprox.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/fedprox.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/nn/module.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/fedprox.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/observer.cpp" "src/CMakeFiles/fedprox.dir/obs/observer.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/obs/observer.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/CMakeFiles/fedprox.dir/obs/trace.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/obs/trace.cpp.o.d"
  "/root/repo/src/obs/trace_sink.cpp" "src/CMakeFiles/fedprox.dir/obs/trace_sink.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/obs/trace_sink.cpp.o.d"
  "/root/repo/src/optim/adam.cpp" "src/CMakeFiles/fedprox.dir/optim/adam.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/optim/adam.cpp.o.d"
  "/root/repo/src/optim/gd.cpp" "src/CMakeFiles/fedprox.dir/optim/gd.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/optim/gd.cpp.o.d"
  "/root/repo/src/optim/inexactness.cpp" "src/CMakeFiles/fedprox.dir/optim/inexactness.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/optim/inexactness.cpp.o.d"
  "/root/repo/src/optim/prox_sgd.cpp" "src/CMakeFiles/fedprox.dir/optim/prox_sgd.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/optim/prox_sgd.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "src/CMakeFiles/fedprox.dir/optim/sgd.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/optim/sgd.cpp.o.d"
  "/root/repo/src/sim/aggregate.cpp" "src/CMakeFiles/fedprox.dir/sim/aggregate.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/sim/aggregate.cpp.o.d"
  "/root/repo/src/sim/client.cpp" "src/CMakeFiles/fedprox.dir/sim/client.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/sim/client.cpp.o.d"
  "/root/repo/src/sim/sampling.cpp" "src/CMakeFiles/fedprox.dir/sim/sampling.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/sim/sampling.cpp.o.d"
  "/root/repo/src/sim/server.cpp" "src/CMakeFiles/fedprox.dir/sim/server.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/sim/server.cpp.o.d"
  "/root/repo/src/sim/systems.cpp" "src/CMakeFiles/fedprox.dir/sim/systems.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/sim/systems.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/fedprox.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/CMakeFiles/fedprox.dir/support/csv.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/support/csv.cpp.o.d"
  "/root/repo/src/support/json.cpp" "src/CMakeFiles/fedprox.dir/support/json.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/support/json.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/CMakeFiles/fedprox.dir/support/log.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/support/log.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/fedprox.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/serialize.cpp" "src/CMakeFiles/fedprox.dir/support/serialize.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/support/serialize.cpp.o.d"
  "/root/repo/src/support/sparkline.cpp" "src/CMakeFiles/fedprox.dir/support/sparkline.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/support/sparkline.cpp.o.d"
  "/root/repo/src/support/threadpool.cpp" "src/CMakeFiles/fedprox.dir/support/threadpool.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/support/threadpool.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/fedprox.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/fedprox.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/fedprox.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
