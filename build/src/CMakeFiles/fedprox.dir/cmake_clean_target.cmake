file(REMOVE_RECURSE
  "libfedprox.a"
)
