# Empty compiler generated dependencies file for fedprox.
# This may be replaced when dependencies are built.
