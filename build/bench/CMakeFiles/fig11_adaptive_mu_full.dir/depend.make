# Empty dependencies file for fig11_adaptive_mu_full.
# This may be replaced when dependencies are built.
