file(REMOVE_RECURSE
  "CMakeFiles/fig11_adaptive_mu_full.dir/fig11_adaptive_mu_full.cpp.o"
  "CMakeFiles/fig11_adaptive_mu_full.dir/fig11_adaptive_mu_full.cpp.o.d"
  "fig11_adaptive_mu_full"
  "fig11_adaptive_mu_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_adaptive_mu_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
