# Empty compiler generated dependencies file for fig12_sampling_schemes.
# This may be replaced when dependencies are built.
