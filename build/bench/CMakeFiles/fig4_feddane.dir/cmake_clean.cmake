file(REMOVE_RECURSE
  "CMakeFiles/fig4_feddane.dir/fig4_feddane.cpp.o"
  "CMakeFiles/fig4_feddane.dir/fig4_feddane.cpp.o.d"
  "fig4_feddane"
  "fig4_feddane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_feddane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
