# Empty dependencies file for fig4_feddane.
# This may be replaced when dependencies are built.
