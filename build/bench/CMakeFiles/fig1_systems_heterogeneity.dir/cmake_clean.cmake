file(REMOVE_RECURSE
  "CMakeFiles/fig1_systems_heterogeneity.dir/fig1_systems_heterogeneity.cpp.o"
  "CMakeFiles/fig1_systems_heterogeneity.dir/fig1_systems_heterogeneity.cpp.o.d"
  "fig1_systems_heterogeneity"
  "fig1_systems_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_systems_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
