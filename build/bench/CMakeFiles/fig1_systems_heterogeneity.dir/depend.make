# Empty dependencies file for fig1_systems_heterogeneity.
# This may be replaced when dependencies are built.
