# Empty dependencies file for ablation_local_solvers.
# This may be replaced when dependencies are built.
