file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_solvers.dir/ablation_local_solvers.cpp.o"
  "CMakeFiles/ablation_local_solvers.dir/ablation_local_solvers.cpp.o.d"
  "ablation_local_solvers"
  "ablation_local_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
