file(REMOVE_RECURSE
  "CMakeFiles/fig8_dissimilarity.dir/fig8_dissimilarity.cpp.o"
  "CMakeFiles/fig8_dissimilarity.dir/fig8_dissimilarity.cpp.o.d"
  "fig8_dissimilarity"
  "fig8_dissimilarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dissimilarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
