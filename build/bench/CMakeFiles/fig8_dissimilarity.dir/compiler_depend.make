# Empty compiler generated dependencies file for fig8_dissimilarity.
# This may be replaced when dependencies are built.
