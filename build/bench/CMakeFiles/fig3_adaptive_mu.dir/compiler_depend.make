# Empty compiler generated dependencies file for fig3_adaptive_mu.
# This may be replaced when dependencies are built.
