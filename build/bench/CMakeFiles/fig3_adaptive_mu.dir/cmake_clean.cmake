file(REMOVE_RECURSE
  "CMakeFiles/fig3_adaptive_mu.dir/fig3_adaptive_mu.cpp.o"
  "CMakeFiles/fig3_adaptive_mu.dir/fig3_adaptive_mu.cpp.o.d"
  "fig3_adaptive_mu"
  "fig3_adaptive_mu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_adaptive_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
