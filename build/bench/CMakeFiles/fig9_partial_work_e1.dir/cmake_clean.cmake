file(REMOVE_RECURSE
  "CMakeFiles/fig9_partial_work_e1.dir/fig9_partial_work_e1.cpp.o"
  "CMakeFiles/fig9_partial_work_e1.dir/fig9_partial_work_e1.cpp.o.d"
  "fig9_partial_work_e1"
  "fig9_partial_work_e1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_partial_work_e1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
