# Empty dependencies file for fig9_partial_work_e1.
# This may be replaced when dependencies are built.
