# Empty compiler generated dependencies file for fig2_statistical_heterogeneity.
# This may be replaced when dependencies are built.
