file(REMOVE_RECURSE
  "CMakeFiles/fig2_statistical_heterogeneity.dir/fig2_statistical_heterogeneity.cpp.o"
  "CMakeFiles/fig2_statistical_heterogeneity.dir/fig2_statistical_heterogeneity.cpp.o.d"
  "fig2_statistical_heterogeneity"
  "fig2_statistical_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_statistical_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
