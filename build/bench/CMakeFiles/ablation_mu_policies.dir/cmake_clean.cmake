file(REMOVE_RECURSE
  "CMakeFiles/ablation_mu_policies.dir/ablation_mu_policies.cpp.o"
  "CMakeFiles/ablation_mu_policies.dir/ablation_mu_policies.cpp.o.d"
  "ablation_mu_policies"
  "ablation_mu_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mu_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
