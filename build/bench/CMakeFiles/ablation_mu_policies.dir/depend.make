# Empty dependencies file for ablation_mu_policies.
# This may be replaced when dependencies are built.
