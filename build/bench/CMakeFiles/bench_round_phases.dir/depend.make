# Empty dependencies file for bench_round_phases.
# This may be replaced when dependencies are built.
