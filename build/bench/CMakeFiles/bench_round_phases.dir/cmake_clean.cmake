file(REMOVE_RECURSE
  "CMakeFiles/bench_round_phases.dir/bench_round_phases.cpp.o"
  "CMakeFiles/bench_round_phases.dir/bench_round_phases.cpp.o.d"
  "bench_round_phases"
  "bench_round_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_round_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
