# Empty dependencies file for fig6_synthetic_full.
# This may be replaced when dependencies are built.
