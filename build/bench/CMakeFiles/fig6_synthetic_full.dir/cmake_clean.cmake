file(REMOVE_RECURSE
  "CMakeFiles/fig6_synthetic_full.dir/fig6_synthetic_full.cpp.o"
  "CMakeFiles/fig6_synthetic_full.dir/fig6_synthetic_full.cpp.o.d"
  "fig6_synthetic_full"
  "fig6_synthetic_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_synthetic_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
