# Empty dependencies file for fig5_iid_stragglers.
# This may be replaced when dependencies are built.
