file(REMOVE_RECURSE
  "CMakeFiles/fig5_iid_stragglers.dir/fig5_iid_stragglers.cpp.o"
  "CMakeFiles/fig5_iid_stragglers.dir/fig5_iid_stragglers.cpp.o.d"
  "fig5_iid_stragglers"
  "fig5_iid_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_iid_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
