# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_smoke "/root/repo/build/examples/quickstart" "--rounds" "3")
set_tests_properties(example_quickstart_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;add_fedprox_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_straggler_tolerance_smoke "/root/repo/build/examples/straggler_tolerance" "--rounds" "4")
set_tests_properties(example_straggler_tolerance_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;add_fedprox_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_solver_smoke "/root/repo/build/examples/custom_solver" "--rounds" "3")
set_tests_properties(example_custom_solver_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;add_fedprox_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_mu_demo_smoke "/root/repo/build/examples/adaptive_mu_demo" "--rounds" "4")
set_tests_properties(example_adaptive_mu_demo_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;add_fedprox_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mu_policies_smoke "/root/repo/build/examples/mu_policies" "--rounds" "4")
set_tests_properties(example_mu_policies_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;add_fedprox_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_checkpoint_resume_smoke "/root/repo/build/examples/checkpoint_resume" "--rounds" "4")
set_tests_properties(example_checkpoint_resume_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;add_fedprox_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_theory_dashboard_smoke "/root/repo/build/examples/theory_dashboard" "--epochs" "2")
set_tests_properties(example_theory_dashboard_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;16;add_fedprox_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_leaf_interchange_smoke "/root/repo/build/examples/leaf_interchange" "--rounds" "3")
set_tests_properties(example_leaf_interchange_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;17;add_fedprox_example;/root/repo/examples/CMakeLists.txt;0;")
