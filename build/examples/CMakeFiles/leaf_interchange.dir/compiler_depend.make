# Empty compiler generated dependencies file for leaf_interchange.
# This may be replaced when dependencies are built.
