file(REMOVE_RECURSE
  "CMakeFiles/leaf_interchange.dir/leaf_interchange.cpp.o"
  "CMakeFiles/leaf_interchange.dir/leaf_interchange.cpp.o.d"
  "leaf_interchange"
  "leaf_interchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_interchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
