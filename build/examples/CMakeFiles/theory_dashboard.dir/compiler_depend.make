# Empty compiler generated dependencies file for theory_dashboard.
# This may be replaced when dependencies are built.
