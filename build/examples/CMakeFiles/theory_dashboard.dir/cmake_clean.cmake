file(REMOVE_RECURSE
  "CMakeFiles/theory_dashboard.dir/theory_dashboard.cpp.o"
  "CMakeFiles/theory_dashboard.dir/theory_dashboard.cpp.o.d"
  "theory_dashboard"
  "theory_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
