# Empty compiler generated dependencies file for straggler_tolerance.
# This may be replaced when dependencies are built.
