file(REMOVE_RECURSE
  "CMakeFiles/straggler_tolerance.dir/straggler_tolerance.cpp.o"
  "CMakeFiles/straggler_tolerance.dir/straggler_tolerance.cpp.o.d"
  "straggler_tolerance"
  "straggler_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/straggler_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
