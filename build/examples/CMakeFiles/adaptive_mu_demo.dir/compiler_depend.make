# Empty compiler generated dependencies file for adaptive_mu_demo.
# This may be replaced when dependencies are built.
