file(REMOVE_RECURSE
  "CMakeFiles/adaptive_mu_demo.dir/adaptive_mu_demo.cpp.o"
  "CMakeFiles/adaptive_mu_demo.dir/adaptive_mu_demo.cpp.o.d"
  "adaptive_mu_demo"
  "adaptive_mu_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_mu_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
