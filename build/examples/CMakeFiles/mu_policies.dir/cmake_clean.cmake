file(REMOVE_RECURSE
  "CMakeFiles/mu_policies.dir/mu_policies.cpp.o"
  "CMakeFiles/mu_policies.dir/mu_policies.cpp.o.d"
  "mu_policies"
  "mu_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mu_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
