# Empty compiler generated dependencies file for mu_policies.
# This may be replaced when dependencies are built.
